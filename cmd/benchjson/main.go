// Command benchjson runs the repository's Go benchmarks and emits one
// BENCH_<n>.json file per benchmark with its ns/op and custom metrics,
// so CI and the PR workflow can archive and diff benchmark results
// without parsing `go test` output.
//
// Usage:
//
//	go run ./cmd/benchjson [-bench regexp] [-benchtime 1x] [-pkg .] [-out dir] [-note text] [-short] [-guard name:metric<=value]...
//	go run ./cmd/benchjson -diff old new [-time-tol pct] [-metric-tol pct]
//
// The default pattern covers the paper-table benchmarks and the SAT
// solver / LEC / SAT-attack benchmarks. -short restricts the run to
// the fast solver-core benchmarks (the CI perf smoke), and -guard
// asserts a custom metric of a named benchmark against a bound —
// "name:metric<=value" (at most), "name:metric>=value" (at least) or
// "name:metric=value" (exactly). CI uses ceiling guards to keep the
// solver's search behavior inside a tolerance band without pinning
// exact conflict counts, which legitimate search changes (such as
// inprocessing) are allowed to move.
//
// -diff compares two result sets — each argument a BENCH_*.json file
// or a directory of them — by benchmark name and exits non-zero when
// the new set regresses: ns/op worse by more than -time-tol percent,
// or any deterministic work metric (conflicts, conflictsSum, queries,
// aigNodes, ...) worse by more than -metric-tol percent. Metrics that
// measure work done are regressions when they grow; benchmarks present
// on only one side are reported but never fail the diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// guard is one -guard assertion on the named benchmark's metric. op is
// "=", "<=" or ">=".
type guard struct {
	name   string
	metric string
	op     string
	value  float64
}

// parseGuard parses "name:metric=value", "name:metric<=value" or
// "name:metric>=value".
func parseGuard(s string) (guard, error) {
	colon := strings.LastIndex(s, ":")
	if colon < 0 {
		return guard{}, fmt.Errorf("guard %q: want name:metric(=|<=|>=)value", s)
	}
	rest := s[colon+1:]
	op := "="
	cut := strings.Index(rest, "=")
	if cut < 0 {
		return guard{}, fmt.Errorf("guard %q: want name:metric(=|<=|>=)value", s)
	}
	if cut > 0 && (rest[cut-1] == '<' || rest[cut-1] == '>') {
		op = rest[cut-1 : cut+1]
		cut--
	}
	v, err := strconv.ParseFloat(rest[cut+len(op):], 64)
	if err != nil {
		return guard{}, fmt.Errorf("guard %q: bad value: %v", s, err)
	}
	return guard{name: s[:colon], metric: rest[:cut], op: op, value: v}, nil
}

// holds reports whether the observed metric value satisfies the guard.
func (g guard) holds(got float64) bool {
	switch g.op {
	case "<=":
		return got <= g.value
	case ">=":
		return got >= g.value
	default:
		return got == g.value
	}
}

// checkGuards returns an error listing every violated or unmatched
// guard.
func checkGuards(guards []guard, results []Result) error {
	var bad []string
	for _, g := range guards {
		found := false
		for _, r := range results {
			// Result names carry the -GOMAXPROCS suffix.
			if r.Name != g.name && !strings.HasPrefix(r.Name, g.name+"-") {
				continue
			}
			found = true
			if got, ok := r.Metrics[g.metric]; !ok {
				bad = append(bad, fmt.Sprintf("%s: metric %q missing", r.Name, g.metric))
			} else if !g.holds(got) {
				bad = append(bad, fmt.Sprintf("%s: %s = %v, want %s %v", r.Name, g.metric, got, g.op, g.value))
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("guard %s:%s%s%v matched no benchmark", g.name, g.metric, g.op, g.value))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("%s", strings.Join(bad, "; "))
	}
	return nil
}

// Result is the JSON shape of one benchmark result.
type Result struct {
	// Name is the benchmark name including sub-benchmark path and the
	// GOMAXPROCS suffix, e.g. "BenchmarkSATSolver/pigeonhole-8".
	Name string `json:"name"`
	// Iterations is b.N of the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall-clock nanoseconds per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every custom b.ReportMetric value by unit, e.g.
	// {"queries": 18, "clauses/query": 172.3}.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Note carries free-form context (e.g. "after PR 2"; -note flag).
	Note string `json:"note,omitempty"`
}

// workMetrics are the deterministic work counters -diff treats as
// regressions when they grow. Timing-like metrics (ratios, per-query
// averages) stay informational.
var workMetrics = map[string]bool{
	"conflicts":    true,
	"conflictsSum": true,
	"queries":      true,
	"oracleEvals":  true,
	"aigNodes":     true,
	"miterClauses": true,
}

// baseName strips the -GOMAXPROCS suffix so result sets recorded on
// hosts with different core counts still pair up.
func baseName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// loadResults reads one BENCH_*.json file, or every BENCH_*.json in a
// directory, into a name-keyed map.
func loadResults(path string) (map[string]Result, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	files := []string{path}
	if info.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "BENCH_*.json"))
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("%s: no BENCH_*.json files", path)
		}
		sort.Strings(files)
	}
	out := make(map[string]Result)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var r Result
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %v", f, err)
		}
		out[baseName(r.Name)] = r
	}
	return out, nil
}

// diff compares new against old and returns the human-readable report
// plus every regression beyond the tolerances (in percent).
func diff(old, new map[string]Result, timeTol, metricTol float64) (report []string, regressions []string) {
	names := make([]string, 0, len(old))
	for n := range old {
		names = append(names, n)
	}
	sort.Strings(names)
	pct := func(o, n float64) float64 { return (n - o) / o * 100 }
	for _, n := range names {
		o := old[n]
		r, ok := new[n]
		if !ok {
			report = append(report, fmt.Sprintf("%s: missing from new results", n))
			continue
		}
		if o.NsPerOp > 0 {
			d := pct(o.NsPerOp, r.NsPerOp)
			line := fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)", n, o.NsPerOp, r.NsPerOp, d)
			report = append(report, line)
			if d > timeTol {
				regressions = append(regressions, line+fmt.Sprintf(" exceeds -time-tol %.0f%%", timeTol))
			}
		}
		// Racing portfolios are scheduling-dependent: when a different
		// member wins, the whole search path (and conflictsSum) differs
		// for reasons unrelated to the code change, so work metrics are
		// reported but never fail. Deterministic variants always report
		// the same winner, keeping their guard strict.
		raceChanged := false
		if ow, ok := o.Metrics["winner"]; ok {
			if nw, ok := r.Metrics["winner"]; ok && ow != nw {
				raceChanged = true
			}
		}
		metrics := make([]string, 0, len(o.Metrics))
		for m := range o.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			ov := o.Metrics[m]
			nv, ok := r.Metrics[m]
			if !ok || ov == 0 {
				continue
			}
			d := pct(ov, nv)
			line := fmt.Sprintf("%s: %s %v -> %v (%+.1f%%)", n, m, ov, nv, d)
			report = append(report, line)
			if workMetrics[m] && d > metricTol && !raceChanged {
				regressions = append(regressions, line+fmt.Sprintf(" exceeds -metric-tol %.0f%%", metricTol))
			}
		}
	}
	extra := make([]string, 0)
	for n := range new {
		if _, ok := old[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		report = append(report, fmt.Sprintf("%s: new benchmark (no baseline)", n))
	}
	return report, regressions
}

func runDiff(timeTol, metricTol float64, args []string) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "benchjson: -diff wants exactly two arguments: old and new (file or directory)")
		os.Exit(2)
	}
	old, err := loadResults(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	new, err := loadResults(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	report, regressions := diff(old, new, timeTol, metricTol)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s):\n", len(regressions))
		for _, line := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", line)
		}
		os.Exit(1)
	}
}

func main() {
	bench := flag.String("bench", "BenchmarkTable|BenchmarkFig5|BenchmarkCompare1M|BenchmarkSATSolver|BenchmarkLEC|BenchmarkSATAttack|BenchmarkAIGMiter|BenchmarkPortfolioMiter|BenchmarkPortfolioUNSAT", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "value passed to go test -benchtime")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", ".", "directory for BENCH_<n>.json files")
	note := flag.String("note", "", "free-form note recorded in every result")
	short := flag.Bool("short", false, "run only the fast solver-core benchmarks (overrides -bench unless -bench was set explicitly)")
	doDiff := flag.Bool("diff", false, "compare two result sets (old new; files or directories) instead of running benchmarks")
	timeTol := flag.Float64("time-tol", 50, "with -diff: fail when ns/op regresses by more than this percentage")
	metricTol := flag.Float64("metric-tol", 25, "with -diff: fail when a work metric (conflicts, queries, ...) regresses by more than this percentage")
	var guards []guard
	flag.Func("guard", "assert a metric bound, as name:metric(=|<=|>=)value (repeatable); exits non-zero on violation", func(s string) error {
		g, err := parseGuard(s)
		if err != nil {
			return err
		}
		guards = append(guards, g)
		return nil
	})
	flag.Parse()

	if *doDiff {
		runDiff(*timeTol, *metricTol, flag.Args())
		return
	}

	pattern := *bench
	if *short {
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "bench" {
				explicit = true
			}
		})
		if !explicit {
			pattern = "BenchmarkSATSolver"
		}
	}
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern, "-benchtime", *benchtime, *pkg)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n", err)
		os.Exit(1)
	}
	results := parse(string(outBytes))
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed")
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := checkGuards(guards, results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: guard violated: %v\n", err)
		os.Exit(1)
	}
	for i, r := range results {
		r.Note = *note
		path := filepath.Join(*out, fmt.Sprintf("BENCH_%d.json", i+1))
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s\t%s\t%.0f ns/op\n", path, r.Name, r.NsPerOp)
	}
}

// parse extracts benchmark lines of the form
//
//	BenchmarkName-8   3   347101951 ns/op   18.00 queries   172.3 clauses/query
//
// from go test output.
func parse(out string) []Result {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		// Remaining fields come in value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				r.NsPerOp = val
			} else {
				r.Metrics[fields[i+1]] = val
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		results = append(results, r)
	}
	return results
}
