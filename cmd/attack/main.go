// Command attack mounts the FEOL-centric proximity attack of Wang et
// al. [7] (with the paper's key-aware post-processing) against a
// split-manufactured layout produced by the secure flow, and reports
// every Sec. IV metric: CCR (regular / key-logical / key-physical),
// HD, OER and PNR.
//
//	attack -bench b14 -scale 0.1 -split 4
//	attack -bench b14 -no-postprocess     # footnote 6 setup
//	attack -bench b14 -ideal -runs 10000  # ideal proximity attack
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/bmarks"
	"repro/internal/flow"
	"repro/internal/metrics"
)

func main() {
	var (
		bench    = flag.String("bench", "b14", "benchmark name")
		scale    = flag.Float64("scale", 0.1, "benchmark scale factor")
		splitAt  = flag.Int("split", 4, "split layer")
		keyBits  = flag.Int("keybits", 128, "key size")
		seed     = flag.Uint64("seed", 1, "seed")
		patterns = flag.Int("patterns", 1<<16, "HD/OER simulation patterns")
		noPost   = flag.Bool("no-postprocess", false, "disable key-aware post-processing (footnote 6)")
		ideal    = flag.Bool("ideal", false, "run the ideal proximity attack instead")
		runs     = flag.Int("runs", 2000, "ideal-attack runs")
	)
	flag.Parse()

	if *ideal {
		res, err := flow.RunIdealAttack(context.Background(), *bench, *scale, *keyBits, *runs, 256, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ideal proximity attack on %s: %d runs, OER %.2f%%, full-key recoveries %d\n",
			*bench, res.Runs, res.OERPercent(), res.FullKeyRecoveries)
		return
	}

	orig, err := bmarks.Load(*bench, *scale)
	if err != nil {
		fatal(err)
	}
	art, err := flow.Run(context.Background(), orig, flow.Config{
		KeyBits:     *keyBits,
		SplitLayer:  *splitAt,
		Seed:        *seed,
		UseATPGLock: true,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("attacking %s split at M%d: %d broken pins (%d key)\n",
		orig.Name, *splitAt, len(art.View.CutPins), len(art.View.KeyPins()))

	asg, err := attack.Proximity(art.View, attack.ProximityOptions{
		Seed:           *seed + 7,
		KeyPostProcess: !*noPost,
	})
	if err != nil {
		fatal(err)
	}
	ccr := metrics.ComputeCCR(art.View, art.Secret, asg)
	fmt.Printf("CCR: regular %.1f%%, key logical %.1f%%, key physical %.1f%%\n",
		ccr.Regular*100, ccr.KeyLogical*100, ccr.KeyPhysical*100)
	fmt.Printf("PNR: %.1f%%\n", metrics.PNR(art.View, art.Secret, asg)*100)
	d, err := metrics.Functional(orig, art.View, asg, *patterns, *seed+8)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("HD %.1f%%, OER %.1f%% over %d patterns\n", d.HD*100, d.OER*100, d.Patterns)
	if ccr.KeyLogical > 0.45 && ccr.KeyLogical < 0.55 {
		fmt.Println("→ attacker at random-guessing level on the key, as the paper claims")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "attack: %v\n", err)
	os.Exit(1)
}
