// Command tables regenerates every table and figure of the paper's
// evaluation (Sec. IV) on the synthetic benchmark suite:
//
//	tables -table 1        Table I   (CCR, ITC'99, split at M4/M6)
//	tables -table 2        Table II  (HD/OER, ITC'99)
//	tables -table 3        Table III (prior art vs proposed, ISCAS)
//	tables -table f6       Footnote 6 (logical CCR without post-processing)
//	tables -fig 5          Fig. 5    (layout cost: prelift / M4 / M6)
//	tables -ideal          Sec. IV-A ideal proximity attack
//	tables -all            everything
//
// Scale and pattern counts default to values that finish in minutes;
// raise -scale/-patterns/-runs to approach the paper's full setup. A
// full-paper-scale run of one benchmark, e.g.
//
//	tables -table 1 -scale 1.0 -patterns 1048576 -benchmarks b14
//
// is practical on a laptop: the AIG rewriting and SAT inprocessing
// passes keep the LEC and attack queries tractable at 1.0 scale, and
// -benchmarks restricts the suite so a single circuit can be studied
// at full size. With -satworkers in the deterministic time-sliced
// mode (the default), the printed tables are byte-identical for every
// worker count.
//
// Long sweeps are crash-safe: -manifest checkpoints every completed
// benchmark×layer cell to an atomically updated JSON file, SIGINT or
// SIGTERM cancels cleanly (exit 130, manifest flushed), and -resume
// picks the sweep back up, recomputing only the missing cells — the
// resumed table is byte-identical to an uninterrupted run. -jobtimeout
// bounds each job, -retries retries transient failures, and -merge
// unions shard manifests from a split sweep.
//
// The Table I/II sweep can also be distributed across OS processes:
// -workers N leases cells to N locally spawned worker processes, and
// -connect host:port,... additionally (or instead) leases them to
// remote splitlockd daemons. Workers that crash, hang, or return
// garbage have their lease expired and the cell reassigned with
// backoff; a cell that keeps killing workers is quarantined after
// -crashbudget deaths and recorded on its row without stopping the
// sweep. The final table and manifest are byte-identical to a
// single-process run at any worker count. -faultpoints list prints
// the fault-injection sites compiled into this binary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/bmarks"
	"repro/internal/dispatch"
	"repro/internal/faultpoint"
	"repro/internal/flow"
	"repro/internal/runmanifest"
	"repro/internal/sim"
)

func main() {
	var (
		table      = flag.String("table", "", "table to regenerate: 1, 2, 3 or f6")
		fig        = flag.Int("fig", 0, "figure to regenerate: 5")
		ideal      = flag.Bool("ideal", false, "run the ideal proximity attack experiment")
		all        = flag.Bool("all", false, "regenerate everything")
		scale      = flag.Float64("scale", 0.1, "ITC'99 benchmark scale (1.0 = published size)")
		keyBits    = flag.Int("keybits", 128, "key size")
		patterns   = flag.Int("patterns", 1<<16, "HD/OER simulation patterns (paper: 1M)")
		runs       = flag.Int("runs", 2000, "ideal-attack runs (paper: 1M)")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		parallel   = flag.Bool("parallel", true, "run benchmarks concurrently")
		simWork    = flag.Int("simworkers", 0, "pattern-simulation workers per job (0 = GOMAXPROCS, 1 = serial; results are identical)")
		simWidth   = flag.Int("simwidth", 0, "simulation width in 64-pattern words per net (1, 4 or 8; 0 = auto): tables are byte-identical at every width")
		satWork    = flag.Int("satworkers", 2, "SAT portfolio members per LEC solve, run in the deterministic time-sliced mode: results are bit-identical for every value (0/1 = single solver)")
		benchSel   = flag.String("benchmarks", "", "comma-separated benchmark subset (default: the full suite of the selected table); e.g. -benchmarks b14 for a single full-scale run")
		jobTimeout = flag.Duration("jobtimeout", 0, "per-cell deadline for Table I/II jobs; a blown deadline is recorded on that cell and the others keep running (0 = none)")
		retries    = flag.Int("retries", 0, "extra attempts for a failed Table I/II job (doubling backoff; timeouts and interrupts are not retried)")
		manifestP  = flag.String("manifest", "", "checkpoint file for the Table I/II sweep: every completed cell is flushed there atomically")
		resume     = flag.Bool("resume", false, "load -manifest and skip cells it already holds (the file must match this configuration)")
		mergeSel   = flag.String("merge", "", "comma-separated shard manifests to union into -manifest, then exit")

		workerMode  = flag.Bool("worker", false, "serve the dispatch worker protocol on stdin/stdout (spawned by a -workers coordinator; not for interactive use)")
		workerID    = flag.Int("workerid", 0, "worker identity under -worker (assigned by the coordinator)")
		workers     = flag.Int("workers", 0, "distribute the Table I/II sweep across this many local worker processes")
		connectSel  = flag.String("connect", "", "comma-separated splitlockd addresses (host:port or URL) to lease Table I/II cells to as remote workers")
		leaseT      = flag.Duration("leasetimeout", 15*time.Second, "expire a cell lease whose worker has not heartbeat for this long; the cell is reassigned")
		hbInterval  = flag.Duration("hbinterval", 500*time.Millisecond, "worker heartbeat interval (coordinator and -worker)")
		crashBudget = flag.Int("crashbudget", 3, "quarantine a cell after it kills this many workers (recorded on its row; the sweep continues)")
		faultSel    = flag.String("faultpoints", "", "'list' prints every REPRO_FAULTPOINTS site compiled into this binary, then exits")
	)
	flag.Parse()
	if *faultSel != "" {
		if *faultSel != "list" {
			fmt.Fprintf(os.Stderr, "tables: -faultpoints %q unsupported (want 'list')\n", *faultSel)
			os.Exit(2)
		}
		printFaultpoints()
		return
	}
	if *workerMode {
		// Worker processes speak the dispatch protocol on stdout; nothing
		// else may be printed there, so this branch exits before any of
		// the table rendering below can run.
		if err := runWorker(*workerID, *hbInterval, *jobTimeout, *retries); err != nil {
			fmt.Fprintf(os.Stderr, "tables worker %d: %v\n", *workerID, err)
			os.Exit(1)
		}
		return
	}
	splitList := func(s string) []string {
		var out []string
		for _, v := range strings.Split(s, ",") {
			if v = strings.TrimSpace(v); v != "" {
				out = append(out, v)
			}
		}
		return out
	}
	benches := splitList(*benchSel)

	start := time.Now()
	any := false
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}

	// Fail fast on a benchmark typo: at full scale a sweep runs for
	// hours, and "unknown benchmark" must not surface after that.
	if err := bmarks.Validate(benches); err != nil {
		fail(err)
	}
	if *simWidth != 0 && !sim.ValidWidth(*simWidth) {
		fail(fmt.Errorf("-simwidth %d unsupported (want 0, 1, 4 or 8)", *simWidth))
	}

	if *mergeSel != "" {
		if *manifestP == "" {
			fail(errors.New("-merge needs -manifest as the output path"))
		}
		if err := mergeShards(*manifestP, splitList(*mergeSel)); err != nil {
			fail(err)
		}
		return
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	// interrupted reports a clean cancellation: completed cells are
	// already flushed to the manifest, so a -resume run continues from
	// exactly here. Exit code 130 mirrors shell convention for SIGINT.
	interrupted := func(m *runmanifest.Manifest) {
		if ctx.Err() == nil {
			return
		}
		msg := "tables: interrupted"
		if m != nil && m.Path() != "" {
			msg = fmt.Sprintf("tables: interrupted; manifest flushed to %s (%d cells done) — rerun with -resume to continue",
				m.Path(), m.Len())
		}
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(130)
	}

	if *resume && *manifestP == "" {
		fail(errors.New("-resume needs -manifest"))
	}

	distributed := *workers > 0 || *connectSel != ""
	if distributed && !(*all || *table == "1" || *table == "2" || *table == "f6") {
		fail(errors.New("-workers/-connect distribute the Table I/II sweep; combine them with -table 1, 2, f6 or -all"))
	}

	if *all || *table == "1" || *table == "2" || *table == "f6" {
		any = true
		manifest, err := openManifest(*manifestP, *resume, runmanifest.Fingerprint{
			Experiment: "itc",
			Scale:      *scale, KeyBits: *keyBits, Patterns: *patterns, Seed: *seed,
			SplitLayers: []int{4, 6},
			Benchmarks:  benches,
		})
		if err != nil {
			fail(err)
		}
		itcOpt := flow.ITCOptions{
			Benchmarks: benches,
			Scale:      *scale, KeyBits: *keyBits, Patterns: *patterns,
			Seed: *seed, Parallel: *parallel, SimWorkers: *simWork,
			SimWidth:      *simWidth,
			SolverWorkers: *satWork,
			JobTimeout:    *jobTimeout, Retries: *retries,
			Manifest: manifest,
		}
		if distributed {
			coord, fleet, err := newCoordinator(coordinatorConfig{
				workers:     *workers,
				connect:     splitList(*connectSel),
				leaseT:      *leaseT,
				hbInterval:  *hbInterval,
				crashBudget: *crashBudget,
				jobTimeout:  *jobTimeout,
				retries:     *retries,
			})
			if err != nil {
				fail(err)
			}
			defer coord.Close()
			runner := flow.DispatchRunner(coord, itcOpt)
			itcOpt.CellRunner = func(ctx context.Context, bench string, layer int) (flow.SplitResult, error) {
				res, err := runner(ctx, bench, layer)
				if err != nil && dispatch.IsQuarantined(err) && manifest != nil {
					// Record the quarantined cell's fate in the manifest so a
					// -resume of the sweep knows why the cell is absent; the
					// cell itself stays missing, so the resume retries it.
					manifest.PutNote(flow.ITCCellKey(bench, layer), err.Error())
					_ = manifest.Flush()
				}
				return res, err
			}
			// Cells beyond the fleet size would only queue at the
			// coordinator; match the sweep's width to the fleet.
			itcOpt.Parallel = true
			itcOpt.Parallelism = fleet
		}
		rows, err := flow.RunITC(ctx, itcOpt)
		interrupted(manifest)
		if *all || *table == "1" {
			printTableI(rows)
		}
		if *all || *table == "2" {
			printTableII(rows)
		}
		if *all || *table == "f6" {
			printFootnote6(rows)
		}
		if err != nil {
			// The error joins every failed benchmark×layer job in row
			// order (rows annotate them individually), so the partial
			// table above never renders silently.
			fail(err)
		}
	}
	if *all || *table == "3" {
		any = true
		rows, err := flow.RunISCAS(ctx, flow.ISCASOptions{
			Benchmarks: benches,
			KeyBits:    *keyBits, Patterns: *patterns, Seed: *seed, Parallel: *parallel,
			SimWorkers: *simWork, SimWidth: *simWidth, SolverWorkers: *satWork,
		})
		interrupted(nil)
		if err != nil {
			fail(err)
		}
		printTableIII(rows)
	}
	if *all || *fig == 5 {
		any = true
		rows, err := flow.RunFig5(ctx, flow.Fig5Options{
			Benchmarks: benches,
			Scale:      *scale, KeyBits: *keyBits, Seed: *seed, Parallel: *parallel,
		})
		interrupted(nil)
		if err != nil {
			fail(err)
		}
		printFig5(rows)
	}
	if *all || *ideal {
		any = true
		fmt.Println("\n== Ideal proximity attack (Sec. IV-A): regular nets granted, key-nets guessed ==")
		idealBenches := benches
		if len(idealBenches) == 0 {
			idealBenches = bmarks.ITC99Names()
		}
		for _, b := range idealBenches {
			res, err := flow.RunIdealAttack(ctx, b, *scale, *keyBits, *runs, 256, *seed)
			interrupted(nil)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-6s runs=%-8d OER=%6.2f%%  full-key recoveries=%d\n",
				b, res.Runs, res.OERPercent(), res.FullKeyRecoveries)
		}
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("\ntotal wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

// openManifest resolves the checkpoint for the Table I/II sweep: nil
// when -manifest is unset, the loaded file under -resume (it must exist
// and match the current configuration up to the benchmark axis), or a
// fresh manifest otherwise.
func openManifest(path string, resume bool, fp runmanifest.Fingerprint) (*runmanifest.Manifest, error) {
	if path == "" {
		return nil, nil
	}
	if len(fp.Benchmarks) == 0 {
		fp.Benchmarks = bmarks.ITC99Names()
	}
	if !resume {
		return runmanifest.New(path, fp), nil
	}
	m, err := runmanifest.Load(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// First run of a sweep that plans to resume later.
			return runmanifest.New(path, fp), nil
		}
		return nil, err
	}
	if cerr := fp.CompatibleWith(m.Fingerprint()); cerr != nil {
		return nil, fmt.Errorf("manifest %s was written under a different configuration (%v); delete it or fix the flags", path, cerr)
	}
	fmt.Printf("resuming from %s: %d cells already complete\n", path, m.Len())
	return m, nil
}

// mergeShards unions shard manifests (disjoint -benchmarks runs of one
// sweep) into a single manifest at out, ready for a final -resume run.
func mergeShards(out string, shardPaths []string) error {
	if len(shardPaths) == 0 {
		return errors.New("-merge lists no shard manifests")
	}
	shards := make([]*runmanifest.Manifest, len(shardPaths))
	for i, p := range shardPaths {
		m, err := runmanifest.Load(p)
		if err != nil {
			return err
		}
		shards[i] = m
	}
	merged := runmanifest.New(out, shards[0].Fingerprint())
	if err := merged.Merge(shards...); err != nil {
		return err
	}
	if err := merged.Flush(); err != nil {
		return err
	}
	fmt.Printf("merged %d shards (%d cells) into %s\n", len(shards), merged.Len(), out)
	return nil
}

// runWorker serves one dispatch worker on stdin/stdout until the
// coordinator sends quit or closes the pipe. jobTimeout and retries are
// worker-local knobs; everything that affects a cell's result arrives
// in the leased CellSpec, so the printed table is independent of which
// worker computed which cell.
func runWorker(id int, hbInterval, jobTimeout time.Duration, retries int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return dispatch.ServeWorker(ctx, os.Stdin, os.Stdout, dispatch.WorkerOptions{
		ID:                id,
		HeartbeatInterval: hbInterval,
		Run:               flow.DispatchCellFunc(flow.ITCOptions{JobTimeout: jobTimeout, Retries: retries}),
	})
}

// coordinatorConfig gathers the dispatch-related flags.
type coordinatorConfig struct {
	workers     int
	connect     []string
	leaseT      time.Duration
	hbInterval  time.Duration
	crashBudget int
	jobTimeout  time.Duration
	retries     int
}

// newCoordinator builds the worker fleet: cfg.workers local processes
// re-executing this binary in -worker mode, plus one remote-worker slot
// per -connect daemon. It returns the fleet size so the sweep's
// parallelism can match it.
func newCoordinator(cfg coordinatorConfig) (*dispatch.Coordinator, int, error) {
	var spawners []dispatch.SpawnFunc
	if cfg.workers > 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, 0, fmt.Errorf("cannot locate own binary to spawn workers: %w", err)
		}
		// Workers inherit this process's environment (REPRO_FAULTPOINTS
		// included — per-worker fault sites key off the -workerid that
		// ProcSpawner appends).
		argv := []string{exe, "-worker",
			"-hbinterval", cfg.hbInterval.String(),
			"-jobtimeout", cfg.jobTimeout.String(),
			"-retries", strconv.Itoa(cfg.retries),
		}
		for i := 0; i < cfg.workers; i++ {
			spawners = append(spawners, dispatch.ProcSpawner(argv, nil))
		}
	}
	for _, target := range cfg.connect {
		url := target
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		spawners = append(spawners, dispatch.RemoteSpawner(url, nil))
	}
	coord, err := dispatch.New(dispatch.Options{
		Spawners:     spawners,
		LeaseTimeout: cfg.leaseT,
		CrashBudget:  cfg.crashBudget,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "tables: "+format+"\n", args...)
		},
	})
	if err != nil {
		return nil, 0, err
	}
	return coord, len(spawners), nil
}

// printFaultpoints lists every Describe'd fault site linked into this
// binary alongside the REPRO_FAULTPOINTS grammar, so injectable
// failures are discoverable without reading source.
func printFaultpoints() {
	fmt.Println("REPRO_FAULTPOINTS arms fault-injection sites for crash testing:")
	fmt.Println()
	fmt.Println("  REPRO_FAULTPOINTS='name:action;name:after=N:action' tables ...")
	fmt.Println()
	fmt.Println("actions: panic | exit=CODE | stall=DURATION; after=N fires on the")
	fmt.Println("N'th hit. Dispatch worker sites are also hit as 'site#<workerid>'")
	fmt.Println("(one specific worker; respawned replacements get fresh ids and are")
	fmt.Println("never re-hit) and 'site@<bench>/M<layer>' (one specific cell).")
	fmt.Println()
	fmt.Println("sites compiled into this binary:")
	for _, s := range faultpoint.Sites() {
		fmt.Printf("  %-32s %s\n", s.Name, s.Doc)
	}
}

func printTableI(rows []flow.ITCRow) {
	fmt.Println("\n== Table I: CCR (%) for ITC'99 benchmarks split at M4 and M6 ==")
	fmt.Printf("%-6s | %8s %8s %8s | %8s %8s %8s\n", "", "M4", "", "", "M6", "", "")
	fmt.Printf("%-6s | %8s %8s %8s | %8s %8s %8s\n",
		"Bench", "KeyLog", "KeyPhys", "Regular", "KeyLog", "KeyPhys", "Regular")
	var s4l, s4p, s4r, s6l, s6p, s6r float64
	n := 0
	for _, r := range rows {
		m4, m6 := r.Results[4], r.Results[6]
		fmt.Printf("%-6s | %8.0f %8.0f %8.0f | %8.0f %8.0f %8.0f\n", r.Benchmark,
			m4.CCR.KeyLogical*100, m4.CCR.KeyPhysical*100, m4.CCR.Regular*100,
			m6.CCR.KeyLogical*100, m6.CCR.KeyPhysical*100, m6.CCR.Regular*100)
		s4l += m4.CCR.KeyLogical
		s4p += m4.CCR.KeyPhysical
		s4r += m4.CCR.Regular
		s6l += m6.CCR.KeyLogical
		s6p += m6.CCR.KeyPhysical
		s6r += m6.CCR.Regular
		n++
	}
	if n > 0 {
		f := 100 / float64(n)
		fmt.Printf("%-6s | %8.0f %8.0f %8.0f | %8.0f %8.0f %8.0f\n", "Avg",
			s4l*f, s4p*f, s4r*f, s6l*f, s6p*f, s6r*f)
	}
	fmt.Println("paper: key-net logical ≈51/54, physical ≈0/1, regular ≈15/32 (M4/M6)")
}

func printTableII(rows []flow.ITCRow) {
	fmt.Println("\n== Table II: HD and OER (%) for ITC'99 benchmarks split at M4/M6 ==")
	fmt.Printf("%-6s | %8s %8s | %8s %8s\n", "Bench", "HD(M4)", "OER(M4)", "HD(M6)", "OER(M6)")
	var h4, o4, h6, o6 float64
	n := 0
	for _, r := range rows {
		m4, m6 := r.Results[4], r.Results[6]
		fmt.Printf("%-6s | %8.0f %8.0f | %8.0f %8.0f\n", r.Benchmark,
			m4.HD*100, m4.OER*100, m6.HD*100, m6.OER*100)
		h4 += m4.HD
		o4 += m4.OER
		h6 += m6.HD
		o6 += m6.OER
		n++
	}
	if n > 0 {
		f := 100 / float64(n)
		fmt.Printf("%-6s | %8.0f %8.0f | %8.0f %8.0f\n", "Avg", h4*f, o4*f, h6*f, o6*f)
	}
	fmt.Println("paper: HD ≈53 (M4) / 25 (M6), OER = 100 everywhere")
}

func printFootnote6(rows []flow.ITCRow) {
	fmt.Println("\n== Footnote 6: key-net logical CCR (%) without key post-processing ==")
	fmt.Printf("%-6s | %8s %8s\n", "Bench", "M4", "M6")
	var a4, a6 float64
	n := 0
	for _, r := range rows {
		fmt.Printf("%-6s | %8.1f %8.1f\n", r.Benchmark,
			r.Results[4].LogicalNoPost*100, r.Results[6].LogicalNoPost*100)
		a4 += r.Results[4].LogicalNoPost
		a6 += r.Results[6].LogicalNoPost
		n++
	}
	if n > 0 {
		fmt.Printf("%-6s | %8.1f %8.1f\n", "Avg", a4/float64(n)*100, a6/float64(n)*100)
	}
	fmt.Println("paper: 17.6 (M4) / 29.3 (M6) — dropping well below 50%")
}

func printTableIII(rows []flow.ISCASRow) {
	fmt.Println("\n== Table III: PNR / CCR / HD / OER (%) on ISCAS split at M4 ==")
	fmt.Printf("%-6s", "Bench")
	for _, s := range flow.SchemeNames() {
		fmt.Printf(" | %-9s PNR  CCR   HD  OER", s)
	}
	fmt.Println()
	avg := map[string]*flow.SchemeResult{}
	for _, s := range flow.SchemeNames() {
		avg[s] = &flow.SchemeResult{}
	}
	for _, r := range rows {
		fmt.Printf("%-6s", r.Benchmark)
		for _, s := range flow.SchemeNames() {
			v := r.Schemes[s]
			fmt.Printf(" | %9s %4.0f %4.0f %4.0f %4.0f", "", v.PNR*100, v.CCR*100, v.HD*100, v.OER*100)
			avg[s].PNR += v.PNR
			avg[s].CCR += v.CCR
			avg[s].HD += v.HD
			avg[s].OER += v.OER
		}
		fmt.Println()
	}
	if len(rows) > 0 {
		f := 100 / float64(len(rows))
		fmt.Printf("%-6s", "Avg")
		for _, s := range flow.SchemeNames() {
			fmt.Printf(" | %9s %4.0f %4.0f %4.0f %4.0f", "", avg[s].PNR*f, avg[s].CCR*f, avg[s].HD*f, avg[s].OER*f)
		}
		fmt.Println()
	}
	fmt.Println("columns per scheme: PNR, CCR, HD, OER; CCR for 'proposed' is key-net physical CCR")
	fmt.Println("paper averages: [22] 88/73/29/100, [12] 30/0/41/100, [13] –/0/42/100, proposed 28/1/43/100")
}

func printFig5(rows []flow.Fig5Row) {
	fmt.Println("\n== Fig. 5: layout cost (%) vs unprotected baseline ==")
	fmt.Printf("%-6s | %-22s | %-22s | %-22s\n", "", "Prelift", "Split M4", "Split M6")
	fmt.Printf("%-6s | %6s %7s %7s | %6s %7s %7s | %6s %7s %7s\n",
		"Bench", "Area", "Power", "Timing", "Area", "Power", "Timing", "Area", "Power", "Timing")
	var pre, m4, m6 []flow.CostDelta
	for _, r := range rows {
		fmt.Printf("%-6s | %6.1f %7.1f %7.1f | %6.1f %7.1f %7.1f | %6.1f %7.1f %7.1f\n", r.Benchmark,
			r.Prelift.Area, r.Prelift.Power, r.Prelift.Timing,
			r.M4.Area, r.M4.Power, r.M4.Timing,
			r.M6.Area, r.M6.Power, r.M6.Timing)
		pre = append(pre, r.Prelift)
		m4 = append(m4, r.M4)
		m6 = append(m6, r.M6)
	}
	box := func(name string, ds []flow.CostDelta, pick func(flow.CostDelta) float64) {
		var xs []float64
		for _, d := range ds {
			xs = append(xs, pick(d))
		}
		q := flow.ComputeQuartiles(xs)
		fmt.Printf("  %-16s min %6.1f  Q1 %6.1f  med %6.1f  Q3 %6.1f  max %6.1f\n",
			name, q.Min, q.Q1, q.Median, q.Q3, q.Max)
	}
	fmt.Println("box-plot series (as in the figure):")
	for _, g := range []struct {
		name string
		ds   []flow.CostDelta
	}{{"Prelift", pre}, {"M4", m4}, {"M6", m6}} {
		box(g.name+" area", g.ds, func(d flow.CostDelta) float64 { return d.Area })
		box(g.name+" power", g.ds, func(d flow.CostDelta) float64 { return d.Power })
		box(g.name+" timing", g.ds, func(d flow.CostDelta) float64 { return d.Timing })
	}
	fmt.Println("paper medians: prelift area ≈ −12.75, power ≈ +7.7, timing ≈ +6.4;")
	fmt.Println("               M4 area ≈ −10.1, power ≈ +20.3, timing ≈ +6.3; M6 area ≈ −8.8, power ≈ +15.5, timing ≈ +6.5")
}
